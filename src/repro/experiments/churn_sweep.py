"""Churn sweep: MLOAD trajectory under streaming fail/repair events.

The fault sweep studies *static* damage at sampled failure rates; this
experiment studies the *dynamic* axis: generate a seeded fail/repair
event stream (:func:`repro.faults.churn.generate_trace`), apply it one
event at a time to an :class:`~repro.faults.churn.IncrementalDegradedScheme`
per curve, and after every event measure the average maximum permutation
load over a fixed set of seeded permutations.  The output is a
trajectory — MLOAD vs event step — plus the incremental re-routing
costs: links flipped, pairs recomputed (identical across curves, since
the candidate link->pairs index is scheme-independent) and per-curve
re-route latency.

The same fixed permutation set is evaluated at every step, so the
trajectory isolates the fabric's evolution from traffic noise: a point
moves only because the event moved it.

Caching
-------
Replay is cheap (only touched pairs are re-selected); the expensive part
is the per-step MLOAD evaluation.  With a cache
(:class:`~repro.runner.cache.ResultCache`), each (curve, step) MLOAD is
stored under a content hash of everything that determines it — topology,
scheme spec, traffic seed, sample count and the *cumulative fault set*
after the event — so re-running the same trace replays every completed
step and an extended trace (more events, same seed) replays its shared
prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Fidelity, fidelity
from repro.faults.churn import (
    ChurnSpec,
    IncrementalDegradedScheme,
    generate_trace,
)
from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load
from repro.obs.recorder import get_recorder
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.util.ascii_chart import AsciiChart
from repro.util.rng import as_generator
from repro.util.tables import format_table

#: the sweep's curve specs: the single-path baseline, limited multi-path
#: at K = 4, and the full fan-out upper bound
CURVES = (
    "d-mod-k",
    "disjoint:4",
    "random:4",
    "umulti",
)

#: default event-stream length per fidelity preset
EVENTS_BY_FIDELITY = {"fast": 4, "normal": 16, "full": 32}


@dataclass(frozen=True)
class ChurnPoint:
    """One trajectory point: the fabric state after one event.

    Step 0 is the pristine baseline (no event); ``pairs_recomputed`` and
    ``links_changed`` are 0 there.  ``reroute_ms`` is wall time and so
    excluded from golden comparisons; everything else is deterministic
    for a fixed ``(topology, curves, seed, churn_seed, fidelity)``.
    """

    step: int
    event: str              # event label, "" for the baseline
    fabric: str             # fabric tag after the event
    links_changed: int
    pairs_recomputed: int   # identical across curves (scheme-independent)
    reroute_ms: dict[str, float]
    mloads: dict[str, float]


@dataclass(frozen=True)
class ChurnSweepResult:
    """Per-scheme MLOAD trajectory under one churn trace."""

    topology: str
    curves: tuple[str, ...]
    trace: str              # ChurnTrace.describe() of the replayed stream
    points: tuple[ChurnPoint, ...]
    pairs_total: int        # full-recompile workload per event
    samples_used: int       # permutation evaluations not served from cache

    def rows(self) -> list[list]:
        return [
            [p.step, p.event or "(pristine)", p.fabric, p.links_changed,
             p.pairs_recomputed] + [p.mloads[c] for c in self.curves]
            for p in self.points
        ]

    def render(self) -> str:
        table = format_table(
            ["step", "event", "fabric", "links", "pairs", *self.curves],
            self.rows(),
            title=f"Churn sweep: avg max permutation load per event, "
                  f"{self.topology}",
        )
        chart = AsciiChart(width=60, height=14)
        for c in self.curves:
            chart.add_series(
                c, [p.step for p in self.points],
                [p.mloads[c] for p in self.points],
            )
        return table + "\n\n" + chart.render(
            xlabel="event step", ylabel="load"
        )


def run(
    *,
    fidelity_name: str | Fidelity = "normal",
    topology: XGFT | None = None,
    curves: tuple[str, ...] = CURVES,
    n_events: int | None = None,
    churn_seed: int = 0,
    seed: int = 2012,
    n_jobs: int = 1,
    cache=None,
) -> ChurnSweepResult:
    """Run the churn sweep.

    ``n_events`` defaults to the fidelity preset
    (:data:`EVENTS_BY_FIDELITY`); ``churn_seed`` seeds the event stream
    independently of the traffic ``seed``.  ``n_jobs`` is accepted for
    CLI uniformity but replay is inherently serial (each event's state
    depends on the previous one), so it is ignored.  ``cache`` replays
    completed per-step MLOAD evaluations (see the module docstring).
    """
    del n_jobs  # replay is serial by construction
    fid = fidelity(fidelity_name)
    xgft = topology if topology is not None else m_port_n_tree(8, 3)
    rec = get_recorder()
    if n_events is None:
        n_events = EVENTS_BY_FIDELITY.get(fid.name, 16)

    trace = generate_trace(xgft, ChurnSpec(n_events=n_events,
                                           seed=churn_seed))
    rng = as_generator(seed)
    matrices = [
        permutation_matrix(random_permutation(xgft.n_procs, rng))
        for _ in range(fid.initial_samples)
    ]
    schemes = {
        c: IncrementalDegradedScheme(make_scheme(xgft, c)) for c in curves
    }
    pairs_total = next(iter(schemes.values())).n_pairs
    samples_used = 0

    def mload(spec_name: str, scheme, step: int) -> float:
        nonlocal samples_used
        key = None
        if cache is not None:
            from repro.runner.cache import cache_key

            key = cache_key({
                "experiment": "churn-sweep",
                "topology": repr(xgft),
                "scheme": spec_name,
                "traffic_seed": seed,
                "n_samples": len(matrices),
                "step": step,
                "cables": list(scheme.fabric.failed_cables),
                "switches": list(scheme.fabric.failed_switches),
            })
            record = cache.get_record(key)
            if record is not None:
                return float(record["mload"])
        loads = [max_link_load(link_loads(xgft, scheme, tm))
                 for tm in matrices]
        samples_used += len(loads)
        value = float(sum(loads) / len(loads))
        if cache is not None:
            cache.put_record(key, {"mload": value})
        return value

    def point(step: int, event_label: str, links: int, pairs: int,
              reroute_ms: dict[str, float]) -> ChurnPoint:
        fabric = next(iter(schemes.values())).fabric
        mloads = {c: mload(c, s, step) for c, s in schemes.items()}
        if rec.enabled:
            rec.event(
                "churn_sweep_point",
                topology=repr(xgft),
                step=step,
                churn_event=event_label,
                fabric=fabric.tag,
                pairs_recomputed=pairs,
                mloads={k: round(v, 9) for k, v in mloads.items()},
            )
        return ChurnPoint(step, event_label, fabric.tag, links, pairs,
                          reroute_ms, mloads)

    points = [point(0, "", 0, 0, {c: 0.0 for c in curves})]
    for i, event in enumerate(trace, start=1):
        stats = {c: s.apply_event(event) for c, s in schemes.items()}
        first = stats[curves[0]]
        points.append(point(
            i, event.label, first.links_changed, first.pairs_recomputed,
            {c: st.seconds * 1e3 for c, st in stats.items()},
        ))

    return ChurnSweepResult(
        topology=repr(xgft),
        curves=tuple(curves),
        trace=trace.describe(),
        points=tuple(points),
        pairs_total=pairs_total,
        samples_used=samples_used,
    )
