"""Shared experiment plumbing: scheme families, K grids, presets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.routing.base import RoutingScheme
from repro.routing.factory import make_scheme
from repro.topology.xgft import XGFT

#: the seeds the paper averages the random heuristic over
RANDOM_SEEDS = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class Fidelity:
    """Experiment size preset.

    ``fast`` keeps wall time in seconds for tests/benchmarks; ``full``
    follows the paper's protocol (tighter CIs, longer flit windows) and
    is what EXPERIMENTS.md records.
    """

    name: str
    # flow-level sampling
    initial_samples: int
    max_samples: int
    rel_precision: float
    # flit-level windows
    warmup_cycles: int
    measure_cycles: int
    drain_cycles: int
    flit_repeats: int


FAST = Fidelity("fast", initial_samples=8, max_samples=32, rel_precision=0.10,
                warmup_cycles=500, measure_cycles=1500, drain_cycles=2000,
                flit_repeats=1)
NORMAL = Fidelity("normal", initial_samples=32, max_samples=512, rel_precision=0.02,
                  warmup_cycles=1000, measure_cycles=4000, drain_cycles=6000,
                  flit_repeats=2)
FULL = Fidelity("full", initial_samples=64, max_samples=4096, rel_precision=0.01,
                warmup_cycles=2000, measure_cycles=8000, drain_cycles=12000,
                flit_repeats=3)

_PRESETS = {f.name: f for f in (FAST, NORMAL, FULL)}


def fidelity(name: str | Fidelity) -> Fidelity:
    """Resolve a preset by name (accepts an existing Fidelity)."""
    if isinstance(name, Fidelity):
        return name
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fidelity {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def k_grid(max_paths: int, *, dense: bool = False) -> tuple[int, ...]:
    """The path-limit values swept on the Figure 4 x-axis.

    ``dense`` sweeps every K up to ``max_paths`` (matches the paper's
    plots on small topologies); otherwise a power-of-two-ish grid plus
    ``max_paths`` keeps large panels tractable.
    """
    if dense or max_paths <= 16:
        return tuple(range(1, max_paths + 1))
    grid = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]
    ks = [k for k in grid if k < max_paths]
    ks.append(max_paths)
    return tuple(ks)


def heuristic_family(
    xgft: XGFT, name: str, k: int, seeds: Sequence[int] = RANDOM_SEEDS
) -> list[RoutingScheme]:
    """The scheme instance(s) a heuristic contributes at path limit
    ``k`` — several seeded instances for ``random``, one otherwise."""
    if name == "random":
        return [make_scheme(xgft, f"random:{k}", seed=s) for s in seeds]
    return [make_scheme(xgft, f"{name}:{k}")]
