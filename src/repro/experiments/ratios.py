"""Oblivious performance-ratio landscape (Section 4.1, quantified).

The paper proves ``PERF(UMULTI) = 1`` and exhibits topologies where
``PERF(d-mod-k) >= prod(w)``; prior work [Yuan et al., ToN'09] showed
single-path routing is far from optimal on m-port n-trees.  This
experiment measures empirical *lower bounds* on each scheme's oblivious
ratio — via the adversarial permutation, the structured patterns and
random permutation search — showing how the limited multi-path
heuristics shrink the worst case as K grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ratio import empirical_oblivious_ratio
from repro.errors import TrafficError
from repro.flow.metrics import performance_ratio
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.adversarial import adversarial_permutation
from repro.traffic.permutations import permutation_matrix
from repro.util.tables import format_table

SCHEME_SPECS = ("d-mod-k", "shift-1:{k}", "random:{k}", "disjoint:{k}", "umulti")


@dataclass(frozen=True)
class RatiosResult:
    topology: str
    rows: tuple[tuple, ...]  # (scheme label, ratio lower bound, witness)

    def render(self) -> str:
        return format_table(
            ["scheme", "PERF lower bound", "witness"], list(self.rows),
            title=f"Empirical oblivious-ratio lower bounds, {self.topology}",
            floatfmt=".3f",
        )


def run(
    *,
    topology: XGFT | None = None,
    ks: tuple[int, ...] = (2, 4),
    permutation_samples: int = 60,
    seed: int = 11,
    engine: str = "reference",
    **_ignored,
) -> RatiosResult:
    """Tabulate ratio lower bounds per scheme on one topology."""
    xgft = topology if topology is not None else m_port_n_tree(8, 2)
    try:
        adv = permutation_matrix(adversarial_permutation(xgft))
    except TrafficError:
        adv = None

    specs: list[str] = ["d-mod-k"]
    for k in ks:
        specs += [f"shift-1:{k}", f"random:{k}", f"disjoint:{k}"]
    specs.append("umulti")

    rows = []
    for spec in specs:
        scheme = make_scheme(xgft, spec, seed=seed)
        est = empirical_oblivious_ratio(
            xgft, scheme, permutation_samples=permutation_samples, seed=seed,
            engine=engine,
        )
        best, witness = est.ratio, est.witness
        if adv is not None:
            adv_ratio = performance_ratio(xgft, scheme, adv)
            if adv_ratio > best:
                best, witness = adv_ratio, "adversarial permutation"
        rows.append((scheme.label, best, witness))
    return RatiosResult(repr(xgft), tuple(rows))
